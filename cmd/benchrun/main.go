// Command benchrun regenerates the paper's evaluation tables and figures
// (Sec. 7) on synthetic WatDiv data:
//
//	-exp load       Table 2  (load times and store sizes)
//	-exp st         Fig. 13 / Table 3 (Selectivity Testing, ExtVP vs VP)
//	-exp basic      Fig. 14 / Table 4 (Basic Testing across all systems)
//	-exp il         Fig. 15 / Table 5 (Incremental Linear Testing)
//	-exp threshold  Table 6 / Fig. 16 (SF threshold sweep)
//	-exp joinorder  Sec. 6.2 ablation (Algorithm 4 vs Algorithm 3)
//	-exp oo         Sec. 5.2 ablation (OO-correlation omission)
//	-exp bitvec     Sec. 8 future work (bit-vector ExtVP + unification)
//	-exp scaling    Table 4 scale axis (Basic means vs dataset size)
//	-exp concurrent concurrent serving throughput on one shared engine
//	-exp all        everything
//
// With -json PATH the raw measurements of every experiment that ran are
// additionally written as one JSON document, so CI can archive them and a
// benchmark trajectory accumulates across commits. Workload cells include
// AllocBytesPerOp/AllocsPerOp (mean heap bytes and allocations per query,
// the -json analogue of go test's B/op and allocs/op) plus
// RowsScanned/RowsPruned (mean metered scan input and rows skipped by scan
// pruning), so allocation and scan-volume regressions show up in the
// BENCH_*.json artifact alongside wall time. The concurrent experiment's
// rows run through the admission scheduler the HTTP server uses and split
// mean latency into MeanQueueWait (time waiting for a worker slot) and
// MeanExec (execution), so a serving regression is attributable to
// queueing or to the engine from the artifact alone.
//
// With -compare OLD.json the basic-workload cells of a previous run (for
// example the BENCH_baseline.json committed to the repository) are diffed
// against this run and printed as a delta table, so CI job logs surface
// scan and allocation regressions without downloading artifacts. The table
// carries warm-repeat means and cache hit-rate cells (WarmNanos /
// CacheHitRate in the JSON) next to the cold times, so warm-vs-cold
// medians — the effect of the memo and result caches — are visible in the
// same diff. A missing
// OLD.json is reported and skipped, not fatal: the first run of a new
// baseline has nothing to compare against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"s2rdf/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchrun: ")
	exp := flag.String("exp", "all", "experiment: load, st, basic, il, threshold, joinorder, oo, bitvec, scaling, concurrent, all")
	scale := flag.Float64("scale", 0.2, "WatDiv scale factor (1 ≈ 10^5 triples)")
	seed := flag.Int64("seed", 42, "generator seed")
	runs := flag.Int("runs", 3, "instantiations per query template")
	timeout := flag.Duration("timeout", 120*time.Second, "per-query timeout (timed-out entries print F)")
	engines := flag.String("engines", "", "comma-separated engine subset (default all)")
	jsonOut := flag.String("json", "", "write raw results of the executed experiments to this JSON file")
	compare := flag.String("compare", "", "previous -json output to diff the basic workload against (delta table)")
	failAbove := flag.Float64("fail-above", 0, "with -compare: exit non-zero when any basic cell's wall time regresses by more than this fraction (e.g. 0.25 = +25%); 0 only prints the delta")
	flag.Parse()

	tmp, err := os.MkdirTemp("", "s2rdf-bench-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	cfg := bench.Config{
		Scale:   *scale,
		Seed:    *seed,
		Runs:    *runs,
		Timeout: *timeout,
		TmpDir:  tmp,
		Out:     os.Stdout,
	}
	if *engines != "" {
		cfg.Engines = strings.Split(*engines, ",")
	}

	// results collects each experiment's raw rows for -json.
	results := map[string]any{
		"config": map[string]any{
			"scale": *scale, "seed": *seed, "runs": *runs,
			"timeout": timeout.String(), "engines": cfg.Engines,
		},
	}
	run := func(name string, fn func() (any, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		rows, err := fn()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		results[name] = rows
	}

	run("load", func() (any, error) {
		return bench.RunLoad(cfg, []float64{*scale / 4, *scale / 2, *scale})
	})
	run("st", func() (any, error) { return bench.RunST(cfg) })
	run("basic", func() (any, error) { return bench.RunBasic(cfg) })
	run("il", func() (any, error) { return bench.RunIL(cfg) })
	run("threshold", func() (any, error) {
		return bench.RunThreshold(cfg, []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0})
	})
	run("joinorder", func() (any, error) { return bench.RunJoinOrder(cfg) })
	run("oo", func() (any, error) { return bench.RunOO(cfg) })
	run("bitvec", func() (any, error) { return bench.RunBitVec(cfg) })
	run("concurrent", func() (any, error) {
		return bench.RunConcurrent(cfg, []int{1, 2, 4, 8, 16})
	})
	run("scaling", func() (any, error) {
		return bench.RunScaling(cfg, []float64{*scale / 4, *scale / 2, *scale, *scale * 2})
	})

	if *jsonOut != "" {
		doc, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			log.Fatalf("marshal results: %v", err)
		}
		doc = append(doc, '\n')
		if err := os.WriteFile(*jsonOut, doc, 0o644); err != nil {
			log.Fatalf("write %s: %v", *jsonOut, err)
		}
		log.Printf("wrote %s", *jsonOut)
	}
	if *compare != "" {
		if cells, ok := results["basic"].([]bench.Cell); ok {
			regressed := printDelta(os.Stdout, *compare, cells, *failAbove)
			if *failAbove > 0 && len(regressed) > 0 {
				log.Fatalf("-fail-above %.2f: %d cell(s) regressed: %s",
					*failAbove, len(regressed), strings.Join(regressed, ", "))
			}
		} else {
			log.Printf("-compare: basic workload did not run, nothing to diff")
		}
	}
}

// printDelta diffs this run's basic-workload cells against a previous -json
// document and renders a per-(query, engine) delta table: wall time, allocs
// and scan volume, plus the pruning counts themselves. With failAbove > 0 it
// returns the "query/engine" labels of cells whose wall time regressed past
// that fraction, for the caller to fail on. A missing or unreadable previous
// file only logs a note — the first run after adding a baseline has nothing
// to compare against and must not fail CI.
func printDelta(w *os.File, oldPath string, cells []bench.Cell, failAbove float64) []string {
	raw, err := os.ReadFile(oldPath)
	if err != nil {
		log.Printf("-compare: %v (skipping delta)", err)
		return nil
	}
	var doc struct {
		Basic []bench.Cell `json:"basic"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		log.Printf("-compare: parsing %s: %v (skipping delta)", oldPath, err)
		return nil
	}
	old := make(map[[2]string]bench.Cell, len(doc.Basic))
	for _, c := range doc.Basic {
		old[[2]string{c.Query, c.Engine}] = c
	}
	pct := func(oldV, newV int64) string {
		if oldV == 0 {
			if newV == 0 {
				return "0%"
			}
			return "new"
		}
		return fmt.Sprintf("%+.0f%%", 100*float64(newV-oldV)/float64(oldV))
	}
	fmt.Fprintf(w, "\n=== delta vs %s (basic workload) ===\n", oldPath)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "query\tengine\ttime\tΔtime\twarm\tΔwarm\thit%\tttfr\tallocs\tΔallocs\tscanned\tΔscanned\tpruned")
	var regressed []string
	for _, c := range cells {
		o, ok := old[[2]string{c.Query, c.Engine}]
		if !ok || c.Failed || o.Failed {
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%v\t%s\t%v\t%s\t%.0f\t%v\t%d\t%s\t%d\t%s\t%d\n",
			c.Query, c.Engine, c.Reported.Round(time.Microsecond),
			pct(int64(o.Reported), int64(c.Reported)),
			c.Warm.Round(time.Microsecond),
			pct(int64(o.Warm), int64(c.Warm)),
			100*c.CacheHitRate,
			c.TTFR.Round(time.Microsecond),
			c.Allocs, pct(int64(o.Allocs), int64(c.Allocs)),
			c.RowsScanned, pct(o.RowsScanned, c.RowsScanned),
			c.RowsPruned)
		if failAbove > 0 && o.Reported > 0 &&
			float64(c.Reported-o.Reported) > failAbove*float64(o.Reported) {
			regressed = append(regressed, c.Query+"/"+c.Engine)
		}
	}
	tw.Flush()
	return regressed
}
