package rdf

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseTripleBasic(t *testing.T) {
	tr, ok, err := ParseTriple(`<http://a> <http://p> <http://b> .`)
	if err != nil || !ok {
		t.Fatalf("parse failed: %v %v", ok, err)
	}
	want := Triple{NewIRI("http://a"), NewIRI("http://p"), NewIRI("http://b")}
	if tr != want {
		t.Errorf("got %v, want %v", tr, want)
	}
}

func TestParseTripleLiteralForms(t *testing.T) {
	lines := []struct {
		in   string
		want Term
	}{
		{`<a> <p> "plain" .`, NewLiteral("plain")},
		{`<a> <p> "tagged"@en-US .`, Term(`"tagged"@en-US`)},
		{`<a> <p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .`, NewInteger(42)},
		{`<a> <p> "esc \" quote" .`, NewLiteral(`esc " quote`)},
		{`<a> <p> _:b1 .`, NewBlank("b1")},
	}
	for _, c := range lines {
		tr, ok, err := ParseTriple(c.in)
		if err != nil || !ok {
			t.Fatalf("%q: parse failed: %v %v", c.in, ok, err)
		}
		if tr.O != c.want {
			t.Errorf("%q: object = %q, want %q", c.in, tr.O, c.want)
		}
	}
}

func TestParseTripleCommentsAndBlanks(t *testing.T) {
	for _, line := range []string{"", "   ", "# a comment"} {
		_, ok, err := ParseTriple(line)
		if ok || err != nil {
			t.Errorf("ParseTriple(%q) = %v, %v; want skip", line, ok, err)
		}
	}
}

func TestParseTripleErrors(t *testing.T) {
	bad := []string{
		`<a> <p>`,
		`<a <p> <b> .`,
		`<a> <p> "unterminated .`,
		`<a> <p> <b> extra .`,
		`junk <p> <b> .`,
		`<a> <p> "x"^^<unterminated .`,
		`_ <p> <b> .`,
	}
	for _, line := range bad {
		if _, ok, err := ParseTriple(line); err == nil && ok {
			t.Errorf("ParseTriple(%q) succeeded, want error", line)
		}
	}
}

func TestReaderWriterRoundTrip(t *testing.T) {
	triples := []Triple{
		{NewIRI("http://a"), NewIRI("http://p"), NewLiteral("hello world")},
		{NewIRI("http://b"), NewIRI("http://q"), NewInteger(7)},
		{NewBlank("n1"), NewIRI("http://p"), NewLangLiteral("bonjour", "fr")},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, tr := range triples {
		if err := w.Write(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(triples) {
		t.Fatalf("got %d triples, want %d", len(got), len(triples))
	}
	for i := range got {
		if got[i] != triples[i] {
			t.Errorf("triple %d: got %v, want %v", i, got[i], triples[i])
		}
	}
}

func TestReaderReportsLine(t *testing.T) {
	in := "<a> <p> <b> .\nbogus line\n"
	r := NewReader(strings.NewReader(in))
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Read()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-2 error, got %v", err)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader("# only a comment\n"))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("want io.EOF, got %v", err)
	}
}

func TestPrefixesExpandShrink(t *testing.T) {
	p := CommonPrefixes()
	term, ok := p.Expand("wsdbm:follows")
	if !ok {
		t.Fatal("Expand failed")
	}
	if term != NewIRI("http://db.uwaterloo.ca/~galuc/wsdbm/follows") {
		t.Errorf("Expand = %q", term)
	}
	if got := p.Shrink(term); got != "wsdbm:follows" {
		t.Errorf("Shrink = %q", got)
	}
	if _, ok := p.Expand("nosuch:x"); ok {
		t.Error("Expand of unknown prefix succeeded")
	}
	if _, ok := p.Expand("noprefix"); ok {
		t.Error("Expand without colon succeeded")
	}
	lit := NewLiteral("x")
	if got := p.Shrink(lit); got != string(lit) {
		t.Errorf("Shrink(literal) = %q", got)
	}
	unknown := NewIRI("urn:zzz:1")
	if got := p.Shrink(unknown); got != string(unknown) {
		t.Errorf("Shrink(unknown IRI) = %q", got)
	}
}

func TestWriterParserRoundTripProperty(t *testing.T) {
	// Any literal value written as a triple object must survive a
	// serialize-parse round trip.
	f := func(s string) bool {
		// Scanner-based reader is line-oriented; escaping handles \n.
		tr := Triple{NewIRI("http://s"), NewIRI("http://p"), NewLiteral(s)}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(tr); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		return got[0].O.Value() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
