package s2rdf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"s2rdf/internal/engine"
	"s2rdf/internal/rdf"
	"s2rdf/internal/watdiv"
)

// cacheStats reads one store's result_cache record (plus the plan- and
// selection-cache counters) out of /healthz.
type cacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Fills     int64 `json:"fills"`
	Swept     int64 `json:"swept"`
	Entries   int   `json:"entries"`
	Coalesced int64 `json:"coalesced"`
	Waiting   int   `json:"waiting"`
}

func healthzCaches(t *testing.T, srv *httptest.Server) (rc cacheStats, plan, sel CacheCounters) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Stores map[string]struct {
			ResultCache    *cacheStats   `json:"result_cache"`
			PlanCache      CacheCounters `json:"plan_cache"`
			SelectionCache CacheCounters `json:"selection_cache"`
		} `json:"stores"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	s := doc.Stores[DefaultStoreName]
	if s.ResultCache != nil {
		rc = *s.ResultCache
	}
	return rc, s.PlanCache, s.SelectionCache
}

// getCached issues one query and returns the body plus the X-S2RDF-Cache
// header ("hit", "miss", "coalesced", or "" when caching is disabled).
func getCached(t *testing.T, srv *httptest.Server, query string) (body []byte, lane string) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(query))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d for %q", resp.StatusCode, query)
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.Header.Get("X-S2RDF-Cache")
}

// rankedTriples builds n subjects where every subject has an urn:score,
// every second an urn:rank and every fourth an urn:tag, so lazy ExtVP
// counting over any predicate pair finds a selective reduction (SF < 1)
// and bumps the statistics epoch.
func rankedTriples(n int) []Triple {
	score := rdf.NewIRI("urn:score")
	rank := rdf.NewIRI("urn:rank")
	tag := rdf.NewIRI("urn:tag")
	var triples []Triple
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("urn:P%d", i))
		triples = append(triples, Triple{S: s, P: score, O: rdf.NewInteger(int64(i % (n / 4)))})
		if i%2 == 0 {
			triples = append(triples, Triple{S: s, P: rank, O: rdf.NewInteger(int64(i))})
		}
		if i%4 == 0 {
			triples = append(triples, Triple{S: s, P: tag, O: rdf.NewInteger(int64(i))})
		}
	}
	return triples
}

// TestServerResultCacheEpochInvalidation drives the epoch contract on a
// lazy ("pay as you go") store, where on-demand ExtVP counting bumps the
// statistics epoch underneath in-flight requests:
//
//  1. the first execution of a join observes the bump and must NOT fill
//     (its result was produced under superseded statistics);
//  2. the re-execution under stable statistics fills, and a repeat hits;
//  3. a different join bumps the epoch again, which invalidates the
//     cached entry — the original query re-executes rather than serving
//     the stale body.
func TestServerResultCacheEpochInvalidation(t *testing.T) {
	st := Load(rankedTriples(400), Options{Lazy: true})
	var execs atomic.Int64
	opts := ServerOptions{
		MaxConcurrent:    4,
		CheapThreshold:   1, // everything non-trivial is Expensive, so it caches
		ResultCacheBytes: 1 << 20,
	}
	opts.chaos = func(*http.Request) engine.Yielder { execs.Add(1); return nil }
	srv := httptest.NewServer(NewHandler(st, opts))
	defer srv.Close()

	const q1 = `SELECT * WHERE { ?p <urn:score> ?s . ?p <urn:rank> ?r }`
	const q2 = `SELECT * WHERE { ?p <urn:score> ?s . ?p <urn:tag> ?v }`

	epoch0 := st.Dataset().StatsEpoch()
	body1, lane := getCached(t, srv, q1)
	if lane != "miss" {
		t.Fatalf("first request lane = %q, want miss", lane)
	}
	if got := st.Dataset().StatsEpoch(); got == epoch0 {
		t.Fatalf("lazy counting did not bump the stats epoch (still %d) — test premise broken", got)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("executions = %d after first request, want 1", got)
	}

	// The epoch moved during request 1, so its fill must have been skipped:
	// the repeat is a miss again and re-executes, now under stable stats.
	body2, lane := getCached(t, srv, q1)
	if lane != "miss" {
		t.Fatalf("second request lane = %q, want miss (fill under a moving epoch must be skipped)", lane)
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("executions = %d after second request, want 2", got)
	}

	// Stable epoch now: the third request must be a pure cache hit.
	body3, lane := getCached(t, srv, q1)
	if lane != "hit" {
		t.Fatalf("third request lane = %q, want hit", lane)
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("executions = %d after cache hit, want still 2", got)
	}
	if !bytes.Equal(body2, body3) {
		t.Fatal("cached body differs from the executed body")
	}
	if !bytes.Equal(body1, body3) {
		t.Fatal("pre-bump and post-bump bodies differ (same data, must agree)")
	}
	rc, _, _ := healthzCaches(t, srv)
	if rc.Hits != 1 || rc.Fills != 1 {
		t.Fatalf("healthz result_cache = %+v, want 1 hit / 1 fill", rc)
	}

	// A different join makes the lazy layer count new reductions, bumping
	// the epoch again: the entry cached for q1 is now stale.
	epoch1 := st.Dataset().StatsEpoch()
	if _, lane := getCached(t, srv, q2); lane != "miss" {
		t.Fatalf("q2 lane = %q, want miss", lane)
	}
	if got := st.Dataset().StatsEpoch(); got == epoch1 {
		t.Fatal("q2 did not bump the stats epoch — test premise broken")
	}

	// q1 must re-execute (stale entry swept), then hit again once refilled.
	before := execs.Load()
	if _, lane := getCached(t, srv, q1); lane != "miss" {
		t.Fatalf("q1 after epoch bump lane = %q, want miss", lane)
	}
	if got := execs.Load(); got != before+1 {
		t.Fatalf("executions = %d after invalidation, want %d", got, before+1)
	}
	rc, _, _ = healthzCaches(t, srv)
	if rc.Swept == 0 {
		t.Fatalf("healthz result_cache = %+v, want swept > 0 after epoch bump", rc)
	}
	if _, lane := getCached(t, srv, q1); lane != "hit" {
		t.Fatalf("q1 refill lane = %q, want hit", lane)
	}

	// Satellite: the plan- and selection-cache counters surface in healthz
	// and have seen traffic by now.
	_, plan, sel := healthzCaches(t, srv)
	if plan.Hits == 0 || plan.Misses == 0 {
		t.Fatalf("plan_cache = %+v, want non-zero hits and misses", plan)
	}
	if sel.Hits+sel.Misses == 0 {
		t.Fatalf("selection_cache = %+v, want some traffic", sel)
	}
}

// TestServerResultCacheByteEquality replays randomized WatDiv basic-shape
// instantiations twice each and checks the cached body is byte-for-byte
// the body the engine produced — the contract that makes the fast path
// invisible to clients.
func TestServerResultCacheByteEquality(t *testing.T) {
	data := watdiv.Generate(watdiv.Config{Scale: 0.05, Seed: 7})
	st := Load(data.Triples, Options{})
	var execs atomic.Int64
	opts := ServerOptions{
		MaxConcurrent:    4,
		CheapThreshold:   1,
		ResultCacheBytes: 16 << 20,
	}
	opts.chaos = func(*http.Request) engine.Yielder { execs.Add(1); return nil }
	srv := httptest.NewServer(NewHandler(st, opts))
	defer srv.Close()

	rng := rand.New(rand.NewSource(7))
	hits := 0
	for _, tpl := range watdiv.BasicTemplates() {
		q := tpl.Instantiate(data, rng)
		cold, coldLane := getCached(t, srv, q)
		before := execs.Load()
		warm, warmLane := getCached(t, srv, q)
		if !bytes.Equal(cold, warm) {
			t.Fatalf("%s: cached body diverges from executed body (%d vs %d bytes)",
				tpl.Shape, len(cold), len(warm))
		}
		if warmLane == "hit" {
			hits++
			if coldLane != "miss" {
				t.Fatalf("%s: warm hit after cold lane %q, want miss", tpl.Shape, coldLane)
			}
			if got := execs.Load(); got != before {
				t.Fatalf("%s: cache hit executed the engine (%d -> %d)", tpl.Shape, before, got)
			}
		}
	}
	if hits == 0 {
		t.Fatal("no WatDiv shape produced a cache hit — fill policy broken")
	}
}

// TestServerSingleFlightStampede sends 8 identical requests at a store
// whose engine is parked mid-production: exactly one executes (the
// leader), the other 7 coalesce onto its flight, and all 8 read complete,
// byte-identical result documents.
func TestServerSingleFlightStampede(t *testing.T) {
	st := Load(scoreTriples(3000), Options{})
	pacer := newGatePacer()
	var execs atomic.Int64
	opts := ServerOptions{
		StreamThreshold:  64,
		ResultCacheBytes: 1 << 20,
	}
	opts.chaos = func(*http.Request) engine.Yielder { execs.Add(1); return nil }
	srv := streamServer(t, st, pacer, opts)

	const followers = 7
	leaderResp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(scanQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer leaderResp.Body.Close()
	if lane := leaderResp.Header.Get("X-S2RDF-Cache"); lane != "miss" {
		t.Fatalf("leader lane = %q, want miss", lane)
	}
	// Read the head so the first flush (which arms the pacer) has happened,
	// then wait for the engine to park mid-production.
	first := make([]byte, 64<<10)
	n, err := leaderResp.Body.Read(first)
	if err != nil || n == 0 {
		t.Fatalf("leader first read: %d bytes, err %v", n, err)
	}
	pacer.awaitBlocked(t)

	// The stampede arrives while the leader is provably still executing.
	type result struct {
		body []byte
		lane string
		err  error
	}
	results := make([]result, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(scanQuery))
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			results[i].lane = resp.Header.Get("X-S2RDF-Cache")
			results[i].body, results[i].err = io.ReadAll(resp.Body)
		}(i)
	}

	// All 7 must have joined the flight before the engine is released —
	// coalesced is cumulative, so this poll is race-free.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rc, _, _ := healthzCaches(t, srv)
		if rc.Coalesced == followers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %d, want %d (followers never joined the flight)", rc.Coalesced, followers)
		}
		time.Sleep(2 * time.Millisecond)
	}

	close(pacer.release)
	rest, err := io.ReadAll(leaderResp.Body)
	if err != nil {
		t.Fatalf("draining leader: %v", err)
	}
	leaderBody := append(first[:n], rest...)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want exactly 1 for the whole stampede", got)
	}
	var doc resultsDoc
	if err := json.Unmarshal(leaderBody, &doc); err != nil {
		t.Fatalf("leader document invalid: %v", err)
	}
	if len(doc.Results.Bindings) != 3000 {
		t.Fatalf("leader streamed %d bindings, want 3000", len(doc.Results.Bindings))
	}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("follower %d: %v", i, r.err)
		}
		if r.lane != "coalesced" {
			t.Fatalf("follower %d lane = %q, want coalesced", i, r.lane)
		}
		if !bytes.Equal(r.body, leaderBody) {
			t.Fatalf("follower %d body diverges from the leader (%d vs %d bytes)",
				i, len(r.body), len(leaderBody))
		}
	}
}
