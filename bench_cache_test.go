// Benchmarks for the result-cache serving fast path: the same expensive
// WatDiv complex-shape query served cold (cache disabled, every request
// executes) versus warm (cache enabled and primed, every request is a
// hit served from pre-serialized bytes). The warm benchmark reports
// execs/op — engine executions per served request — which must be 0: a
// hit never plans, never scans, never decodes a term.
package s2rdf

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"

	"math/rand"
	"sync"

	"s2rdf/internal/engine"
	"s2rdf/internal/watdiv"
)

// The cache benchmarks use their own, larger fixture than the paper's
// evaluation tables: the fast path's value is proportional to how much
// work a hit avoids, so the cold side must be a genuinely expensive
// query. A top-100 over C3 (the unbounded complex star, the most
// expensive basic shape) on a scale-1 store is the cache's target
// class: the engine executes and sorts the full star fan-out on every
// cold request, while the servable body stays small.
var (
	cacheFixOnce  sync.Once
	cacheFixStore *Store
	cacheFixQuery string
)

func benchCacheFixture(b *testing.B) (*Store, string) {
	b.Helper()
	cacheFixOnce.Do(func() {
		data := watdiv.Generate(watdiv.Config{Scale: 1, Seed: 42})
		cacheFixStore = Load(data.Triples, Options{})
		rng := rand.New(rand.NewSource(42))
		for _, tpl := range watdiv.BasicTemplates() {
			if tpl.Name == "C3" {
				cacheFixQuery = tpl.Instantiate(data, rng) + " ORDER BY ?v0 LIMIT 100"
			}
		}
	})
	if cacheFixQuery == "" {
		b.Fatal("no C3 template in the basic workload")
	}
	return cacheFixStore, cacheFixQuery
}

func benchCacheServer(b *testing.B, cacheBytes int64, execs *atomic.Int64) *httptest.Server {
	b.Helper()
	st, _ := benchCacheFixture(b)
	opts := ServerOptions{
		MaxConcurrent:    4,
		CheapThreshold:   1,
		ResultCacheBytes: cacheBytes,
	}
	if execs != nil {
		opts.chaos = func(*http.Request) engine.Yielder { execs.Add(1); return nil }
	}
	srv := httptest.NewServer(NewHandler(st, opts))
	b.Cleanup(srv.Close)
	return srv
}

func benchGet(b *testing.B, srv *httptest.Server, q string) int {
	resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(q))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status = %d", resp.StatusCode)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	return int(n)
}

// BenchmarkResultCacheCold serves the C3 query with caching disabled:
// every request pays planning, execution and serialization.
func BenchmarkResultCacheCold(b *testing.B) {
	_, q := benchCacheFixture(b)
	srv := benchCacheServer(b, 0, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, srv, q)
	}
}

// BenchmarkResultCacheWarm serves the same query from the primed cache:
// every request is a hit, and the reported execs/op metric must be 0.
func BenchmarkResultCacheWarm(b *testing.B) {
	_, q := benchCacheFixture(b)
	var execs atomic.Int64
	srv := benchCacheServer(b, 64<<20, &execs)
	// Prime: first request misses and fills (one execution).
	benchGet(b, srv, q)
	execs.Store(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, srv, q)
	}
	b.StopTimer()
	if got := execs.Load(); got != 0 {
		b.Fatalf("warm serving executed the engine %d times, want 0", got)
	}
	b.ReportMetric(0, "execs/op")
}

// BenchmarkSingleFlightStampede measures a burst of 8 identical concurrent
// requests against the cold store with single-flight coalescing: one
// execution per burst, seven replays.
func BenchmarkSingleFlightStampede(b *testing.B) {
	_, q := benchCacheFixture(b)
	var execs atomic.Int64
	srv := benchCacheServer(b, 64<<20, &execs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh never-cached query text per burst (comment differences
		// normalize away, so vary a literal-free dummy pattern instead by
		// reloading: simplest is busting with a unique LIMIT).
		bq := fmt.Sprintf("%s LIMIT %d", q, 1000000+i)
		done := make(chan int, 8)
		for c := 0; c < 8; c++ {
			go func() { done <- benchGet(b, srv, bq) }()
		}
		for c := 0; c < 8; c++ {
			<-done
		}
	}
	b.StopTimer()
	// How often the burst collapsed to one execution: 1.0 = perfect
	// coalescing (the deterministic contract is covered by
	// TestServerSingleFlightStampede; timing decides it here).
	b.ReportMetric(float64(execs.Load())/float64(b.N), "execs/burst")
}
