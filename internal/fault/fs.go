// Package fault provides the fault-tolerance primitives the serving path
// is built on: a small filesystem abstraction that store reads and spill
// I/O are routed through (so tests can inject disk faults
// deterministically), and a per-store health state machine fed by
// corruption and I/O-failure signals.
//
// The FS interface is intentionally tiny — exactly the operations the
// store and the spill path perform — so a fault-injecting implementation
// can reason about every call site. Production code uses OS, a direct
// passthrough to package os; chaos tests wrap it in an Injector.
package fault

import (
	"io"
	"os"
)

// File is the subset of *os.File the store and spill paths use. Spill run
// files are written sequentially and then read back via ReadAt from
// multiple merge cursors; table files are read sequentially.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.Closer
	Name() string
}

// FS abstracts the filesystem operations on the serving path. All methods
// mirror their package-os counterparts.
type FS interface {
	Open(name string) (File, error)
	Create(name string) (File, error)
	// CreateTemp mirrors os.CreateTemp: dir "" means the OS temp dir.
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	MkdirAll(path string, perm os.FileMode) error
	Remove(name string) error
}

// OS is the production FS: a direct passthrough to package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) Remove(name string) error { return os.Remove(name) }
