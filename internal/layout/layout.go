// Package layout implements the relational mappings for RDF data that the
// paper compares (Sec. 4) and contributes (Sec. 5): the Triples Table (TT),
// Vertical Partitioning (VP), Property Tables (PT) and the paper's novel
// Extended Vertical Partitioning (ExtVP) with its SS/OS/SO semi-join
// reductions, selectivity statistics and SF threshold.
package layout

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"s2rdf/internal/bitvec"
	"s2rdf/internal/dict"
	"s2rdf/internal/rdf"
	"s2rdf/internal/store"
)

// Correlation identifies the join-correlation kind between two triple
// patterns (paper Fig. 9).
type Correlation uint8

const (
	// SS is a subject-subject correlation (star joins).
	SS Correlation = iota
	// OS is an object-subject correlation (forward path joins).
	OS
	// SO is a subject-object correlation (backward path joins).
	SO
	// OO is an object-object correlation; the paper chooses not to
	// materialize these (Sec. 5.2). Supported for the ablation experiment.
	OO
)

// String returns the correlation name as used in table names.
func (c Correlation) String() string {
	switch c {
	case SS:
		return "SS"
	case OS:
		return "OS"
	case SO:
		return "SO"
	case OO:
		return "OO"
	}
	return fmt.Sprintf("Correlation(%d)", int(c))
}

// ExtKey identifies one ExtVP table: the reduction of VP[P1] against VP[P2]
// under the given correlation.
type ExtKey struct {
	Kind   Correlation
	P1, P2 dict.ID
}

// TableInfo records the statistics S2RDF keeps for every candidate ExtVP
// table, including the ones that were not materialized because they are
// empty, equal to VP, or above the SF threshold (paper Sec. 5.2/5.3).
type TableInfo struct {
	Rows         int
	SF           float64
	Materialized bool
}

// Options configures dataset construction.
type Options struct {
	// Threshold is the SF threshold: ExtVP tables with SF >= Threshold are
	// not materialized. 1.0 (the default via DefaultOptions) keeps every
	// non-trivial table, matching "no threshold" in the paper (SF<1 tables
	// are always kept; SF=1 tables never are, they equal VP).
	Threshold float64
	// BuildExtVP controls whether the ExtVP tables are computed.
	BuildExtVP bool
	// BuildOO additionally materializes OO reductions (ablation only).
	BuildOO bool
	// BuildPT builds the Sempala-style property table.
	BuildPT bool
	// BitVectors stores ExtVP reductions as selection bit vectors over the
	// VP tables instead of materialized row copies — the compact
	// representation the paper proposes as future work (Sec. 8). One
	// reduction then costs |VP_p1|/8 bytes, and several reductions of the
	// same pattern can be intersected with a word-wise AND.
	BitVectors bool
	// Workers bounds build parallelism; <=0 means GOMAXPROCS.
	Workers int
}

// DefaultOptions enables ExtVP with no SF threshold.
func DefaultOptions() Options {
	return Options{Threshold: 1.0, BuildExtVP: true}
}

// Dataset is a fully loaded RDF dataset in all requested layouts, sharing
// one term dictionary.
type Dataset struct {
	Dict *dict.Dict
	// TT is the triples table (columns s, p, o), sorted by (p, s, o).
	TT *store.Table
	// VP maps predicate ID to its two-column table (columns s, o), sorted
	// by (s, o).
	VP map[dict.ID]*store.Table
	// VPRows caches VP table sizes.
	VPRows map[dict.ID]int
	// ExtVP holds the materialized semi-join reductions (row copies).
	ExtVP map[ExtKey]*store.Table
	// ExtBits holds the reductions in bit-vector form when the dataset was
	// built with Options.BitVectors: bit i marks row i of VP[key.P1].
	ExtBits map[ExtKey]*bitvec.Bitset
	// Info holds statistics for every candidate ExtVP table (materialized
	// or not). Missing entries mean the reduction equals VP (SF = 1).
	Info map[ExtKey]TableInfo
	// PT is the Sempala-style unified property table (nil unless built).
	PT *PropertyTable
	// Predicates lists all predicate IDs, sorted.
	Predicates []dict.ID
	// Threshold is the SF threshold the ExtVP tables were built with.
	Threshold float64

	// statsEpoch counts statistics revisions. Eagerly built datasets never
	// change after Build, so the epoch stays 0; lazy ("pay as you go")
	// ExtVP bumps it whenever a new reduction's statistics land, which
	// lets selection caches keyed on the old epoch invalidate themselves.
	statsEpoch atomic.Int64

	// mu guards the maps lazy ExtVP counting mutates after Build (Info and
	// ExtVP): LazyExtVP takes the write lock around its map writes, and
	// Sizes/Save — which may run while a lazy store is serving queries —
	// take the read lock. Eagerly built datasets have no post-Build writers,
	// so the lock is uncontended there. Query-path readers in lazy mode go
	// through LazyExtVP (serialized on its own mutex) and need no lock.
	mu sync.RWMutex
}

// statsLock acquires the write lock for a lazy statistics/table mutation.
func (d *Dataset) statsLock() { d.mu.Lock() }

// statsUnlock releases statsLock.
func (d *Dataset) statsUnlock() { d.mu.Unlock() }

// StatsEpoch returns the current statistics revision; any cached decision
// derived from the dataset's statistics is stale once the value changes.
func (d *Dataset) StatsEpoch() int64 { return d.statsEpoch.Load() }

// bumpStatsEpoch records that the statistics changed.
func (d *Dataset) bumpStatsEpoch() { d.statsEpoch.Add(1) }

// NumTriples returns the dataset size |G|.
func (d *Dataset) NumTriples() int { return d.TT.NumRows() }

// Build constructs a dataset from triples according to opts.
func Build(triples []rdf.Triple, opts Options) *Dataset {
	d := dict.New()
	return BuildEncoded(Encode(triples, d), d, opts)
}

// Encode dictionary-encodes triples into a TT table sorted by (p, s, o).
func Encode(triples []rdf.Triple, d *dict.Dict) *store.Table {
	type enc struct{ s, p, o dict.ID }
	rows := make([]enc, len(triples))
	for i, t := range triples {
		s, p, o := d.EncodeTriple(t)
		rows[i] = enc{s, p, o}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].p != rows[j].p {
			return rows[i].p < rows[j].p
		}
		if rows[i].s != rows[j].s {
			return rows[i].s < rows[j].s
		}
		return rows[i].o < rows[j].o
	})
	tt := store.NewTable("TT", "s", "p", "o")
	tt.Data[0] = make([]dict.ID, len(rows))
	tt.Data[1] = make([]dict.ID, len(rows))
	tt.Data[2] = make([]dict.ID, len(rows))
	for i, r := range rows {
		tt.Data[0][i] = r.s
		tt.Data[1][i] = r.p
		tt.Data[2][i] = r.o
	}
	// The (p,s,o) sort makes p the detected sort column: TT-mode scans
	// binary search the predicate run instead of reading the whole table.
	tt.Finalize()
	return tt
}

// BuildEncoded constructs a dataset from an already-encoded triples table.
func BuildEncoded(tt *store.Table, d *dict.Dict, opts Options) *Dataset {
	if opts.Threshold <= 0 {
		opts.Threshold = 1.0
	}
	ds := &Dataset{
		Dict:      d,
		TT:        tt,
		VP:        make(map[dict.ID]*store.Table),
		VPRows:    make(map[dict.ID]int),
		ExtVP:     make(map[ExtKey]*store.Table),
		ExtBits:   make(map[ExtKey]*bitvec.Bitset),
		Info:      make(map[ExtKey]TableInfo),
		Threshold: opts.Threshold,
	}
	ds.buildVP()
	if opts.BuildExtVP {
		ds.buildExtVP(opts)
	}
	if opts.BuildPT {
		ds.PT = buildPT(ds)
	}
	return ds
}

// buildVP slices the (p,s,o)-sorted TT into one table per predicate.
func (ds *Dataset) buildVP() {
	n := ds.TT.NumRows()
	ps := ds.TT.Data[1]
	for i := 0; i < n; {
		j := i + 1
		for j < n && ps[j] == ps[i] {
			j++
		}
		p := ps[i]
		t := store.NewTable(VPName(ds.Dict, p), "s", "o")
		t.Data[0] = ds.TT.Data[0][i:j]
		t.Data[1] = ds.TT.Data[2][i:j]
		// The TT (p,s,o) sort leaves each slice sorted by (s,o): Finalize
		// records s as the sort column plus zone maps and distinct counts.
		t.Finalize()
		ds.VP[p] = t
		ds.VPRows[p] = j - i
		ds.Predicates = append(ds.Predicates, p)
		i = j
	}
	sort.Slice(ds.Predicates, func(i, j int) bool { return ds.Predicates[i] < ds.Predicates[j] })
}

// idSet is a hash set of IDs.
type idSet map[dict.ID]struct{}

func columnSet(col []dict.ID) idSet {
	s := make(idSet, len(col))
	for _, v := range col {
		s[v] = struct{}{}
	}
	return s
}

// buildExtVP computes the semi-join reductions of every VP table pair for
// the SS, OS and SO correlations (and OO when requested), in parallel.
// This is the preprocessing the paper performs at load time (Sec. 5.2).
func (ds *Dataset) buildExtVP(opts Options) {
	preds := ds.Predicates
	subjects := make(map[dict.ID]idSet, len(preds))
	objects := make(map[dict.ID]idSet, len(preds))
	for _, p := range preds {
		subjects[p] = columnSet(ds.VP[p].Data[0])
		objects[p] = columnSet(ds.VP[p].Data[1])
	}

	type task struct{ key ExtKey }
	var tasks []task
	for _, p1 := range preds {
		for _, p2 := range preds {
			if p1 != p2 {
				tasks = append(tasks, task{ExtKey{SS, p1, p2}})
			}
			tasks = append(tasks, task{ExtKey{OS, p1, p2}})
			tasks = append(tasks, task{ExtKey{SO, p1, p2}})
			if opts.BuildOO && p1 != p2 {
				tasks = append(tasks, task{ExtKey{OO, p1, p2}})
			}
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	next := make(chan task, len(tasks))
	for _, t := range tasks {
		next <- t
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				tbl, bits, info := ds.reduce(t.key, subjects, objects, opts)
				mu.Lock()
				if info.SF < 1 { // SF = 1 tables are not recorded: VP is used
					ds.Info[t.key] = info
					if tbl != nil {
						ds.ExtVP[t.key] = tbl
					}
					if bits != nil {
						ds.ExtBits[t.key] = bits
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// reduceCol resolves which VP column of key.P1 is filtered by which column
// set of key.P2 for the key's correlation kind.
func (ds *Dataset) reduceCol(key ExtKey, subjects, objects map[dict.ID]idSet) (filter idSet, col []dict.ID) {
	vp := ds.VP[key.P1]
	switch key.Kind {
	case SS:
		return subjects[key.P2], vp.Data[0]
	case OS:
		return subjects[key.P2], vp.Data[1]
	case SO:
		return objects[key.P2], vp.Data[0]
	case OO:
		return objects[key.P2], vp.Data[1]
	}
	return nil, nil
}

// reduceStats computes one reduction's statistics — row count, SF, and
// whether it qualifies for materialization under threshold — without
// allocating the reduction itself. Most candidate tables are empty or full,
// and lazy mode rejects candidates on these statistics before paying for
// row copies, so the counting pass stands alone.
func (ds *Dataset) reduceStats(key ExtKey, subjects, objects map[dict.ID]idSet, threshold float64) TableInfo {
	filter, col := ds.reduceCol(key, subjects, objects)
	matches := 0
	for _, v := range col {
		if _, ok := filter[v]; ok {
			matches++
		}
	}
	total := len(col)
	info := TableInfo{Rows: matches, SF: float64(matches) / float64(total)}
	info.Materialized = matches > 0 && matches < total && info.SF < threshold
	return info
}

// materializeReduction builds the row copy of a reduction that reduceStats
// found qualifying (0 < matches < total rows).
func (ds *Dataset) materializeReduction(key ExtKey, subjects, objects map[dict.ID]idSet, matches int) *store.Table {
	filter, col := ds.reduceCol(key, subjects, objects)
	vp := ds.VP[key.P1]
	t := store.NewTable(ExtVPName(ds.Dict, key), "s", "o")
	t.Data[0] = make([]dict.ID, 0, matches)
	t.Data[1] = make([]dict.ID, 0, matches)
	for i, v := range col {
		if _, ok := filter[v]; ok {
			t.Data[0] = append(t.Data[0], vp.Data[0][i])
			t.Data[1] = append(t.Data[1], vp.Data[1][i])
		}
	}
	// Reductions preserve the VP (s,o) order, so they stay sorted by s.
	t.Finalize()
	return t
}

// reduce computes one semi-join reduction. The returned table (or bitset,
// with Options.BitVectors) is nil when the reduction is empty, equal to VP,
// or above the SF threshold.
func (ds *Dataset) reduce(key ExtKey, subjects, objects map[dict.ID]idSet, opts Options) (*store.Table, *bitvec.Bitset, TableInfo) {
	info := ds.reduceStats(key, subjects, objects, opts.Threshold)
	if !info.Materialized {
		return nil, nil, info
	}
	if opts.BitVectors {
		filter, col := ds.reduceCol(key, subjects, objects)
		bits := bitvec.New(len(col))
		for i, v := range col {
			if _, ok := filter[v]; ok {
				bits.Set(i)
			}
		}
		return nil, bits, info
	}
	return ds.materializeReduction(key, subjects, objects, info.Rows), nil, info
}

// ExtInfo returns the statistics for an ExtVP candidate table. When the
// table was never computed (reduction equals VP) it reports SF = 1.
func (ds *Dataset) ExtInfo(key ExtKey) TableInfo {
	if info, ok := ds.Info[key]; ok {
		return info
	}
	return TableInfo{Rows: ds.VPRows[key.P1], SF: 1}
}

// VPName renders a VP table name, e.g. "VP:wsdbm:follows".
func VPName(d *dict.Dict, p dict.ID) string {
	return "VP:" + shrink(d, p)
}

// ExtVPName renders an ExtVP table name, e.g. "ExtVP:OS:follows|likes".
func ExtVPName(d *dict.Dict, key ExtKey) string {
	return "ExtVP:" + key.Kind.String() + ":" + shrink(d, key.P1) + "|" + shrink(d, key.P2)
}

func shrink(d *dict.Dict, p dict.ID) string {
	return rdf.CommonPrefixes().Shrink(d.Decode(p))
}

// SizeSummary aggregates layout sizes for the load-time experiment
// (paper Table 2 / Table 6).
type SizeSummary struct {
	Triples    int // |G| = tuples in TT and in VP
	VPTables   int
	ExtTables  int // materialized ExtVP tables (0 < SF < threshold)
	ExtEmpty   int // candidate tables with SF = 0
	ExtEqualVP int // candidate tables with SF = 1 (not stored)
	ExtCut     int // candidate tables cut by the SF threshold
	// ExtPending counts qualifying reductions whose statistics lazy mode
	// has counted but whose rows are not built yet (they lost every
	// selection so far).
	ExtPending  int
	ExtTuples   int // total tuples across materialized ExtVP tables
	TotalTuples int // VP + ExtVP tuples
	// ExtBitBytes is the in-memory size of the bit-vector representation
	// (0 unless built with Options.BitVectors).
	ExtBitBytes int
}

// Sizes computes the dataset's size summary. It is safe to call while a
// lazy ("pay as you go") store is concurrently materializing reductions.
func (ds *Dataset) Sizes() SizeSummary {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	s := SizeSummary{
		Triples:  ds.NumTriples(),
		VPTables: len(ds.VP),
	}
	k := len(ds.Predicates)
	candidates := 2*k*k + k*(k-1) // OS + SO for all pairs, SS for p1 != p2
	counted := 0
	for key, info := range ds.Info {
		if key.Kind == OO {
			continue // ablation-only tables are not part of the schema
		}
		counted++
		switch {
		case info.Materialized && (ds.ExtVP[key] != nil || ds.ExtBits[key] != nil):
			s.ExtTables++
			s.ExtTuples += info.Rows
		case info.Materialized:
			s.ExtPending++ // lazy: counted, not yet built
		case info.Rows == 0:
			s.ExtEmpty++
		default:
			s.ExtCut++
		}
	}
	s.ExtEqualVP = candidates - counted
	s.TotalTuples = s.Triples + s.ExtTuples
	for _, bits := range ds.ExtBits {
		s.ExtBitBytes += bits.Bytes()
	}
	return s
}
